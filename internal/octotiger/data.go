package octotiger

import (
	"encoding/binary"
	"math"
)

// momentCount is the number of multipole coefficients exchanged per leaf
// (order-3 expansion, as in Octo-Tiger's FMM).
const momentCount = 20

// leafState is the simulation state of one leaf, resident on its owner
// locality. Phase discipline (global barriers between step phases) replaces
// per-leaf locking: committed fields are read-only during exchanges, and the
// kernel writes only the potential scratch array.
type leafState struct {
	fields    [][]float64 // committed hydro fields, each SubgridSize^3
	potential []float64   // kernel scratch, SubgridSize^3
	moments   [momentCount]float64
}

// newLeafState deterministically initializes a leaf's subgrid from its
// Morton key, so runs are reproducible across parcelports and partitions.
func newLeafState(p Params, lf *Leaf) *leafState {
	s := p.SubgridSize
	n := s * s * s
	st := &leafState{potential: make([]float64, n)}
	st.fields = make([][]float64, p.Fields)
	for k := range st.fields {
		st.fields[k] = make([]float64, n)
		for i := range st.fields[k] {
			h := splitmix64(lf.Morton ^ uint64(k)<<48 ^ uint64(i)<<16 ^ p.Seed)
			st.fields[k][i] = float64(h%100000) / 100000.0
		}
	}
	return st
}

// mass returns the conserved quantity (sum of field 0).
func (st *leafState) mass() float64 {
	var m float64
	for _, v := range st.fields[0] {
		m += v
	}
	return m
}

// computeMoments builds the multipole coefficients from field 0: a cheap
// polynomial reduction standing in for the real multipole expansion.
func (st *leafState) computeMoments(sub int) {
	for m := 0; m < momentCount; m++ {
		var acc float64
		w := 1.0 + float64(m)*0.25
		for i, v := range st.fields[0] {
			acc += v * math.Mod(float64(i)*w, 2.0)
		}
		st.moments[m] = acc
	}
}

// faceIndices iterates the subgrid indices of face f (0..5 = -X,+X,-Y,+Y,
// -Z,+Z) in a fixed deterministic order, calling fn with each linear index.
func faceIndices(s int, f int, fn func(idx int)) {
	fixed := 0
	if f&1 == 1 {
		fixed = s - 1
	}
	switch f / 2 {
	case 0: // X faces: index = x + s*(y + s*z)
		for z := 0; z < s; z++ {
			for y := 0; y < s; y++ {
				fn(fixed + s*(y+s*z))
			}
		}
	case 1: // Y faces
		for z := 0; z < s; z++ {
			for x := 0; x < s; x++ {
				fn(x + s*(fixed+s*z))
			}
		}
	default: // Z faces
		for y := 0; y < s; y++ {
			for x := 0; x < s; x++ {
				fn(x + s*(y+s*fixed))
			}
		}
	}
}

// extractBoundary serializes the committed values of face f across all
// fields: the hydro boundary payload (Fields × SubgridSize² float64s).
func (st *leafState) extractBoundary(p Params, f int) []byte {
	s := p.SubgridSize
	out := make([]byte, 0, p.Fields*s*s*8)
	for k := 0; k < p.Fields; k++ {
		faceIndices(s, f, func(idx int) {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(st.fields[k][idx]))
		})
	}
	return out
}

// encodeMoments serializes the multipole coefficients (the small message of
// each exchange).
func (st *leafState) encodeMoments() []byte {
	out := make([]byte, 0, momentCount*8)
	for _, m := range st.moments {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(m))
	}
	return out
}

// decodeF64s parses a packed float64 payload.
func decodeF64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// applyBoundary accumulates one neighbour's face payload and moments into
// the potential: the FMM-flavoured interaction kernel. face is this leaf's
// face index toward the neighbour.
func (st *leafState) applyBoundary(p Params, face int, boundary, moments []float64) {
	s := p.SubgridSize
	// Near-field: boundary values push on this leaf's touching face.
	for k := 0; k < p.Fields; k++ {
		off := k * s * s
		j := 0
		faceIndices(s, face^1, func(idx int) { // our touching face is opposite
			st.potential[idx] += 0.1 * boundary[off+j] / float64(k+1)
			j++
		})
	}
	// Far-field: the neighbour's multipole moments contribute a smooth term.
	var far float64
	for m, v := range moments {
		far += v / float64((m+1)*(m+2))
	}
	far /= float64(len(st.potential))
	for i := range st.potential {
		st.potential[i] += 1e-6 * far
	}
}

// selfInteraction runs the local part of the kernel (a small stencil over
// the committed field), the compute that overlaps communication in the real
// application.
func (st *leafState) selfInteraction(p Params) {
	s := p.SubgridSize
	n := s * s * s
	f0 := st.fields[0]
	for i := 0; i < n; i++ {
		acc := -6 * f0[i]
		if i >= 1 {
			acc += f0[i-1]
		}
		if i+1 < n {
			acc += f0[i+1]
		}
		if i >= s {
			acc += f0[i-s]
		}
		if i+s < n {
			acc += f0[i+s]
		}
		if i >= s*s {
			acc += f0[i-s*s]
		}
		if i+s*s < n {
			acc += f0[i+s*s]
		}
		st.potential[i] = 0.01 * acc
	}
}

// commit folds the potential back into the committed fields in a
// mass-conserving way (the update removes its own mean), then clears the
// scratch.
func (st *leafState) commit() {
	n := float64(len(st.potential))
	var mean float64
	for _, v := range st.potential {
		mean += v
	}
	mean /= n
	for i, v := range st.potential {
		st.fields[0][i] += 0.05 * (v - mean)
		st.potential[i] = 0
	}
}
