package octotiger

import (
	"fmt"
	"sort"
)

// Params sizes the proxy problem.
type Params struct {
	// MaxLevel is the maximum octree refinement level — the paper's knob for
	// the computation/communication ratio (6 on Expanse, 5 on Rostam,
	// deliberately small so inter-process communication dominates).
	MaxLevel int
	// MinLevel is fully refined; cells beyond it refine adaptively.
	// Default 2.
	MinLevel int
	// RefineFraction is the fraction of candidate cells refined at each
	// level beyond MinLevel (deterministic pseudo-random). Default 0.5.
	RefineFraction float64
	// SubgridSize is the per-leaf subgrid edge length (Octo-Tiger uses 8).
	// Default 8.
	SubgridSize int
	// Fields is the number of hydro fields exchanged per boundary.
	// Default 4.
	Fields int
	// StopStep is the number of simulation steps (the paper uses 5).
	StopStep int
	// Seed makes the adaptive refinement deterministic.
	Seed uint64
	// RegridEvery triggers adaptive regridding after every N steps
	// (0 = never), re-adapting the octree to the evolving solution like the
	// real application.
	RegridEvery int
	// RegridThreshold is the field-variance indicator above which a leaf
	// refines. Default 0.05.
	RegridThreshold float64
}

func (p *Params) fillDefaults() {
	if p.MaxLevel <= 0 {
		p.MaxLevel = 4
	}
	if p.MinLevel <= 0 {
		p.MinLevel = 2
	}
	if p.MinLevel > p.MaxLevel {
		p.MinLevel = p.MaxLevel
	}
	if p.RefineFraction == 0 {
		p.RefineFraction = 0.5
	}
	if p.SubgridSize <= 0 {
		p.SubgridSize = 8
	}
	if p.Fields <= 0 {
		p.Fields = 4
	}
	if p.StopStep <= 0 {
		p.StopStep = 5
	}
	if p.Seed == 0 {
		p.Seed = 0x0C70714E5
	}
	if p.RegridThreshold == 0 {
		p.RegridThreshold = 0.05
	}
}

// Leaf is one octree leaf (a subgrid owner).
type Leaf struct {
	Index   int    // position in Morton order
	Level   int    // refinement level
	X, Y, Z uint32 // integer coordinates at Level
	Morton  uint64 // Morton key at MaxLevel resolution (for ordering)
	Owner   int    // owning locality

	// Neighbors[f] is the leaf index adjacent across face f (-X,+X,-Y,+Y,
	// -Z,+Z), or -1 at the domain boundary. With adaptive refinement the
	// neighbour may be at a coarser level.
	Neighbors [6]int
}

// Tree is the adaptive octree, shared (read-only after Build) by all
// localities in the simulated cluster.
type Tree struct {
	Params Params
	Leaves []*Leaf

	// index maps (level, x, y, z) to a leaf.
	index map[cellKey]int
}

type cellKey struct {
	level   int
	x, y, z uint32
}

// splitmix64 is the deterministic hash behind adaptive refinement decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	return x ^ x>>31
}

// BuildTree constructs the adaptive octree and partitions its leaves over
// localities with the Morton space-filling curve.
func BuildTree(p Params, localities int) (*Tree, error) {
	p.fillDefaults()
	if localities <= 0 {
		return nil, fmt.Errorf("octotiger: need at least one locality")
	}
	t := &Tree{Params: p, index: make(map[cellKey]int)}

	// Recursive refinement from the root cell.
	type cell struct {
		level   int
		x, y, z uint32
	}
	var leaves []cell
	var refine func(c cell)
	refine = func(c cell) {
		doRefine := false
		if c.level < p.MinLevel {
			doRefine = true
		} else if c.level < p.MaxLevel {
			h := splitmix64(p.Seed ^ MortonEncode(c.x, c.y, c.z) ^ uint64(c.level)<<56)
			doRefine = float64(h%1000)/1000.0 < p.RefineFraction
		}
		if !doRefine {
			leaves = append(leaves, c)
			return
		}
		for dz := uint32(0); dz < 2; dz++ {
			for dy := uint32(0); dy < 2; dy++ {
				for dx := uint32(0); dx < 2; dx++ {
					refine(cell{c.level + 1, c.x<<1 | dx, c.y<<1 | dy, c.z<<1 | dz})
				}
			}
		}
	}
	refine(cell{0, 0, 0, 0})

	// Sort leaves by Morton key at max-level resolution.
	t.Leaves = make([]*Leaf, len(leaves))
	for i, c := range leaves {
		shift := uint(p.MaxLevel - c.level)
		t.Leaves[i] = &Leaf{
			Level: c.level, X: c.x, Y: c.y, Z: c.z,
			Morton: MortonEncode(c.x<<shift, c.y<<shift, c.z<<shift),
		}
	}
	sort.Slice(t.Leaves, func(i, j int) bool { return t.Leaves[i].Morton < t.Leaves[j].Morton })
	for i, lf := range t.Leaves {
		lf.Index = i
		t.index[cellKey{lf.Level, lf.X, lf.Y, lf.Z}] = i
	}

	// Partition: contiguous Morton ranges, balanced by leaf count.
	n := len(t.Leaves)
	for i, lf := range t.Leaves {
		lf.Owner = i * localities / n
	}

	// Neighbour finding: same-level first, then walk to coarser ancestors.
	deltas := [6][3]int{{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}, {0, 0, -1}, {0, 0, 1}}
	for _, lf := range t.Leaves {
		for f, d := range deltas {
			lf.Neighbors[f] = t.findNeighbor(lf, d)
		}
	}
	return t, nil
}

// findNeighbor locates the leaf adjacent to lf across the face with unit
// offset d, allowing coarser neighbours. Returns -1 outside the domain.
func (t *Tree) findNeighbor(lf *Leaf, d [3]int) int {
	level := lf.Level
	x, y, z := int(lf.X)+d[0], int(lf.Y)+d[1], int(lf.Z)+d[2]
	max := 1 << uint(level)
	if x < 0 || y < 0 || z < 0 || x >= max || y >= max || z >= max {
		return -1
	}
	cx, cy, cz := uint32(x), uint32(y), uint32(z)
	for l := level; l >= 0; l-- {
		if idx, ok := t.index[cellKey{l, cx, cy, cz}]; ok {
			return idx
		}
		cx, cy, cz = cx>>1, cy>>1, cz>>1
	}
	// A finer neighbour: descend into the face-adjacent child closest to lf.
	// (Occurs when lf is coarser than its neighbours.) Walk down on the
	// touching side.
	cx, cy, cz = uint32(x), uint32(y), uint32(z)
	for l := level + 1; l <= t.Params.MaxLevel; l++ {
		cx, cy, cz = descendToward(cx, d[0]), descendToward(cy, d[1]), descendToward(cz, d[2])
		if idx, ok := t.index[cellKey{l, cx, cy, cz}]; ok {
			return idx
		}
	}
	return -1
}

// descendToward picks the child coordinate on the side touching the
// requesting leaf: entering from the positive side selects the low child,
// from the negative side the high child, and no offset stays centred low.
func descendToward(c uint32, d int) uint32 {
	child := c << 1
	if d < 0 {
		child |= 1 // neighbour is on our -side: its far (high) child touches us
	}
	return child
}

// OwnedLeaves returns the indices of leaves owned by a locality, in Morton
// order.
func (t *Tree) OwnedLeaves(loc int) []int {
	var out []int
	for _, lf := range t.Leaves {
		if lf.Owner == loc {
			out = append(out, lf.Index)
		}
	}
	return out
}

// RemoteFaces counts leaf faces whose neighbour lives on another locality —
// the inter-process communication volume per step.
func (t *Tree) RemoteFaces() int {
	n := 0
	for _, lf := range t.Leaves {
		for _, nb := range lf.Neighbors {
			if nb >= 0 && t.Leaves[nb].Owner != lf.Owner {
				n++
			}
		}
	}
	return n
}
