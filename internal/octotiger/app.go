package octotiger

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"hpxgo/internal/amt"
	"hpxgo/internal/core"
	"hpxgo/internal/wire"
)

// App runs the Octo-Tiger proxy on a core.Runtime. Create it after
// NewRuntime and before Start (it registers actions).
type App struct {
	rt   *core.Runtime
	p    Params
	tree *Tree

	// states is indexed by leaf index; entry i is logically resident on
	// Leaves[i].Owner and only ever touched by that locality's tasks.
	states []*leafState

	aBoundary uint32
	aPartial  uint32

	initialMass float64
	steps       int
}

// New builds the tree, initializes leaf state and registers the proxy's
// actions on the runtime.
func New(rt *core.Runtime, p Params) (*App, error) {
	p.fillDefaults()
	tree, err := BuildTree(p, rt.Localities())
	if err != nil {
		return nil, err
	}
	a := &App{rt: rt, p: p, tree: tree}
	a.states = make([]*leafState, len(tree.Leaves))
	for i, lf := range tree.Leaves {
		a.states[i] = newLeafState(p, lf)
		a.initialMass += a.states[i].mass()
	}

	// ot_boundary returns the committed hydro face payload and the multipole
	// moments of one leaf: the per-face exchange of the real application
	// (one multi-KiB zero-copy-eligible blob plus one small blob).
	a.aBoundary = rt.MustRegisterAction("ot_boundary", func(loc *core.Locality, args [][]byte) [][]byte {
		if len(args) != 1 || len(args[0]) != 5 {
			return nil
		}
		leafIdx := int(binary.LittleEndian.Uint32(args[0]))
		face := int(args[0][4])
		if leafIdx < 0 || leafIdx >= len(a.states) || face < 0 || face > 5 {
			return nil
		}
		st := a.states[leafIdx]
		return [][]byte{st.extractBoundary(a.p, face), st.encodeMoments()}
	})

	// ot_partial returns a locality's partial mass, for the per-step global
	// reduction (a latency-sensitive small-message phase).
	a.aPartial = rt.MustRegisterAction("ot_partial", func(loc *core.Locality, args [][]byte) [][]byte {
		var mass float64
		for _, idx := range a.tree.OwnedLeaves(loc.ID()) {
			mass += a.states[idx].mass()
		}
		return [][]byte{wire.F64(mass)}
	})
	return a, nil
}

// Tree exposes the octree (tests, reporting).
func (a *App) Tree() *Tree { return a.tree }

// Params returns the effective (default-filled) parameters.
func (a *App) Params() Params { return a.p }

// Steps returns the number of completed steps.
func (a *App) Steps() int { return a.steps }

// TotalMass returns the current conserved mass.
func (a *App) TotalMass() float64 {
	var m float64
	for _, st := range a.states {
		m += st.mass()
	}
	return m
}

// InitialMass returns the mass at initialization.
func (a *App) InitialMass() float64 { return a.initialMass }

// PotentialChecksum folds every leaf's committed field 0 into one number in
// deterministic (Morton) order; it must not depend on the parcelport or the
// locality count.
func (a *App) PotentialChecksum() float64 {
	var sum float64
	for _, st := range a.states {
		for i, v := range st.fields[0] {
			sum += v * math.Mod(float64(i)*0.37, 1.0)
		}
	}
	return sum
}

// stepTimeout bounds one step; communication bugs surface as errors rather
// than hangs.
const stepTimeout = 5 * time.Minute

// Step executes one simulation step across all localities.
func (a *App) Step() error {
	// Phase A: multipole moments (local compute, no communication).
	if err := a.forAllLocalities(func(loc *core.Locality) error {
		for _, idx := range a.tree.OwnedLeaves(loc.ID()) {
			a.states[idx].computeMoments(a.p.SubgridSize)
		}
		return nil
	}); err != nil {
		return fmt.Errorf("octotiger: moments phase: %w", err)
	}

	// Phase B: boundary exchange + interaction kernel. Leaves are processed
	// in worker-count chunks so a locality's workers overlap communication
	// and compute, exactly the pattern that stresses the parcelport.
	if err := a.forAllLocalities(a.exchangeAndKernel); err != nil {
		return fmt.Errorf("octotiger: exchange phase: %w", err)
	}

	// Phase C: global mass reduction (small-message latency phase), using
	// the runtime's Reduce collective.
	res, err := a.rt.Reduce(0, stepTimeout, "ot_partial", wire.SumF64Fold)
	if err != nil {
		return fmt.Errorf("octotiger: mass reduction: %w", err)
	}
	total, err := wire.ToF64(res[0])
	if err != nil {
		return fmt.Errorf("octotiger: mass reduction result: %w", err)
	}
	if rel := math.Abs(total-a.initialMass) / a.initialMass; rel > 1e-9 {
		return fmt.Errorf("octotiger: mass not conserved: %g vs %g", total, a.initialMass)
	}

	// Phase D: commit the update (local).
	if err := a.forAllLocalities(func(loc *core.Locality) error {
		for _, idx := range a.tree.OwnedLeaves(loc.ID()) {
			a.states[idx].commit()
		}
		return nil
	}); err != nil {
		return fmt.Errorf("octotiger: commit phase: %w", err)
	}
	a.steps++
	return nil
}

// Run executes StopStep steps (regridding between steps when configured)
// and returns the achieved steps per second.
func (a *App) Run() (stepsPerSecond float64, err error) {
	start := time.Now()
	for s := 0; s < a.p.StopStep; s++ {
		if err := a.Step(); err != nil {
			return 0, err
		}
		if a.p.RegridEvery > 0 && (s+1)%a.p.RegridEvery == 0 && s+1 < a.p.StopStep {
			if _, err := a.Regrid(a.p.RegridThreshold); err != nil {
				return 0, err
			}
		}
	}
	elapsed := time.Since(start).Seconds()
	return float64(a.p.StopStep) / elapsed, nil
}

// forAllLocalities runs fn as a task on every locality and waits for all.
func (a *App) forAllLocalities(fn func(loc *core.Locality) error) error {
	futs := make([]*amt.Future[struct{}], a.rt.Localities())
	for l := 0; l < a.rt.Localities(); l++ {
		loc := a.rt.Locality(l)
		futs[l] = core.Async(loc, func() (struct{}, error) {
			return struct{}{}, fn(loc)
		})
	}
	for l, f := range futs {
		if _, err := f.GetTimeout(stepTimeout); err != nil {
			return fmt.Errorf("locality %d: %w", l, err)
		}
	}
	return nil
}

// exchangeAndKernel is phase B on one locality: pull every remote (and
// local) neighbour boundary and fold it into the kernel, chunked across the
// locality's workers.
func (a *App) exchangeAndKernel(loc *core.Locality) error {
	owned := a.tree.OwnedLeaves(loc.ID())
	workers := loc.Scheduler().Workers()
	chunks := workers
	if chunks > len(owned) {
		chunks = len(owned)
	}
	if chunks == 0 {
		return nil
	}
	futs := make([]*amt.Future[struct{}], chunks)
	for c := 0; c < chunks; c++ {
		lo := c * len(owned) / chunks
		hi := (c + 1) * len(owned) / chunks
		part := owned[lo:hi]
		futs[c] = core.Async(loc, func() (struct{}, error) {
			return struct{}{}, a.processLeaves(loc, part)
		})
	}
	for _, f := range futs {
		if _, err := f.GetTimeout(stepTimeout); err != nil {
			return err
		}
	}
	return nil
}

// processLeaves runs the exchange + kernel for a chunk of owned leaves.
func (a *App) processLeaves(loc *core.Locality, leaves []int) error {
	type pendingFace struct {
		face int
		fut  *amt.Future[[][]byte]
	}
	for _, idx := range leaves {
		lf := a.tree.Leaves[idx]
		st := a.states[idx]
		st.selfInteraction(a.p)
		var pend []pendingFace
		for f, nb := range lf.Neighbors {
			if nb < 0 {
				continue
			}
			nbLeaf := a.tree.Leaves[nb]
			// Ask the neighbour's owner for the face it shows us (its
			// opposite face). Local neighbours short-circuit inside CallID.
			var req [5]byte
			binary.LittleEndian.PutUint32(req[:4], uint32(nb))
			req[4] = byte(f ^ 1)
			fut := loc.CallID(nbLeaf.Owner, a.aBoundary, [][]byte{req[:]})
			pend = append(pend, pendingFace{face: f, fut: fut})
		}
		for _, p := range pend {
			res, err := p.fut.GetTimeout(stepTimeout)
			if err != nil {
				return fmt.Errorf("boundary pull: %w", err)
			}
			if len(res) != 2 {
				return fmt.Errorf("boundary pull: %d blobs", len(res))
			}
			st.applyBoundary(a.p, p.face, decodeF64s(res[0]), decodeF64s(res[1]))
		}
	}
	return nil
}
