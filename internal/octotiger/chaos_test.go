package octotiger

import (
	"math"
	"testing"
	"time"

	"hpxgo/internal/core"
	"hpxgo/internal/fabric"
)

// TestOctoTigerUnderFaults runs the mini-app end to end over a lossy fabric
// (1% drop plus duplication, corruption and latency spikes) and checks the
// physics is bitwise-sane: all steps complete and mass is conserved, i.e.
// every boundary exchange was delivered exactly once despite the faults.
func TestOctoTigerUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short mode")
	}
	rt, err := core.NewRuntime(core.Config{
		Localities:         2,
		WorkersPerLocality: 2,
		Parcelport:         "lci",
		Fabric: fabric.Config{
			LatencyNs:   200,
			GbitsPerSec: 100,
			Rails:       2,
			Faults: fabric.FaultConfig{
				DropProb:    0.01,
				DupProb:     0.01,
				CorruptProb: 0.01,
				SpikeProb:   0.005,
				SpikeNs:     20_000,
				Seed:        11,
			},
			RetransmitTimeoutNs: 200_000,
			AckDelayNs:          50_000,
			RetryBudget:         50,
		},
		DeliveryTimeout: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	app, err := New(rt, Params{MaxLevel: 3, MinLevel: 2, StopStep: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(); err != nil {
		t.Fatalf("run under faults: %v", err)
	}
	if app.Steps() != 5 {
		t.Fatalf("completed %d steps, want 5", app.Steps())
	}
	if rel := math.Abs(app.TotalMass()-app.InitialMass()) / app.InitialMass(); rel > 1e-9 {
		t.Fatalf("mass drifted by %g under faults: a boundary exchange was lost or duplicated", rel)
	}
	st := rt.Network().Device(0).Stats()
	if st.FaultDropped == 0 {
		t.Fatal("fault injection inactive; test is vacuous")
	}
	if st.LinksDowned != 0 {
		t.Fatalf("link falsely downed during run: %+v", st)
	}
	t.Logf("5 steps under 1%% faults: %d retransmits, %d faults dropped, %d duplicated, %d corrupted",
		st.Retransmits, st.FaultDropped, st.FaultDuplicated, st.FaultCorrupted)
}
