// Package octotiger is a communication-faithful proxy for Octo-Tiger, the
// astrophysics application the paper uses as its application-level benchmark
// (§5). Octo-Tiger simulates binary star mergers with the fast multipole
// method on adaptive octrees; what matters for the paper's measurements is
// its communication structure, which this proxy reproduces:
//
//   - an adaptive octree refined to a configurable maximum level (the knob
//     the paper sets to 6 on Expanse and 5 on Rostam),
//   - space-filling-curve (Morton) partitioning of leaves over localities,
//   - per-step exchanges of small multipole messages and multi-KiB hydro
//     boundary payloads between neighbouring leaves on different
//     localities, driven by the task graph,
//   - an FMM-flavoured local compute kernel between exchanges,
//   - steps/second as the reported metric.
package octotiger

// Morton (Z-order) encoding interleaves the bits of 3-D coordinates; sorting
// leaves by Morton code yields the space-filling curve Octo-Tiger uses to
// partition tree nodes into processes.

// mortonSpread3 spreads the low 21 bits of v so there are two zero bits
// between consecutive bits.
func mortonSpread3(v uint32) uint64 {
	x := uint64(v) & 0x1FFFFF // 21 bits
	x = (x | x<<32) & 0x1F00000000FFFF
	x = (x | x<<16) & 0x1F0000FF0000FF
	x = (x | x<<8) & 0x100F00F00F00F00F
	x = (x | x<<4) & 0x10C30C30C30C30C3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// mortonCompact3 inverts mortonSpread3.
func mortonCompact3(x uint64) uint32 {
	x &= 0x1249249249249249
	x = (x ^ x>>2) & 0x10C30C30C30C30C3
	x = (x ^ x>>4) & 0x100F00F00F00F00F
	x = (x ^ x>>8) & 0x1F0000FF0000FF
	x = (x ^ x>>16) & 0x1F00000000FFFF
	x = (x ^ x>>32) & 0x1FFFFF
	return uint32(x)
}

// MortonEncode interleaves (x, y, z) (each up to 21 bits) into a 63-bit key.
func MortonEncode(x, y, z uint32) uint64 {
	return mortonSpread3(x) | mortonSpread3(y)<<1 | mortonSpread3(z)<<2
}

// MortonDecode recovers (x, y, z) from a Morton key.
func MortonDecode(m uint64) (x, y, z uint32) {
	return mortonCompact3(m), mortonCompact3(m >> 1), mortonCompact3(m >> 2)
}
