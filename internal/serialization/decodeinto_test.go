package serialization

import (
	"bytes"
	"fmt"
	"testing"
)

// bundleOf encodes n parcels, each carrying argsPer inline arguments whose
// contents identify the (parcel, arg) pair.
func bundleOf(n, argsPer int) (*Message, []*Parcel) {
	ps := make([]*Parcel, n)
	for i := range ps {
		args := make([][]byte, argsPer)
		for j := range args {
			args[j] = []byte(fmt.Sprintf("p%d-a%d", i, j))
		}
		ps[i] = &Parcel{Action: uint32(i + 1), Source: 1, Dest: 0, ContID: uint64(i), Args: args}
	}
	return Encode(ps, 0), ps
}

func checkDecoded(t *testing.T, got []Parcel, want []*Parcel) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d parcels, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := &got[i], want[i]
		if g.Action != w.Action || g.Source != w.Source || g.Dest != w.Dest || g.ContID != w.ContID {
			t.Fatalf("parcel %d header = %+v, want %+v", i, g, w)
		}
		if len(g.Args) != len(w.Args) {
			t.Fatalf("parcel %d has %d args, want %d", i, len(g.Args), len(w.Args))
		}
		for j := range g.Args {
			if !bytes.Equal(g.Args[j], w.Args[j]) {
				t.Fatalf("parcel %d arg %d = %q, want %q", i, j, g.Args[j], w.Args[j])
			}
		}
	}
}

// TestDecodeIntoReuse decodes messages of shrinking and growing sizes through
// one DecodeBuf and checks every round is decoded correctly — the slab must
// not leak state between rounds.
func TestDecodeIntoReuse(t *testing.T) {
	var buf DecodeBuf
	for _, n := range []int{5, 1, 17, 2, 9} {
		m, want := bundleOf(n, 3)
		got, err := DecodeInto(&buf, m)
		if err != nil {
			t.Fatalf("bundle of %d: %v", n, err)
		}
		checkDecoded(t, got, want)
	}
}

// TestDecodeIntoArgGrowth covers the spans fixup: enough arguments that the
// shared args slice reallocates mid-decode, which would invalidate windows
// taken eagerly.
func TestDecodeIntoArgGrowth(t *testing.T) {
	var buf DecodeBuf
	// First round small, so the second round's much larger arg count is
	// guaranteed to grow the recycled backing array mid-decode.
	m, want := bundleOf(2, 1)
	got, err := DecodeInto(&buf, m)
	if err != nil {
		t.Fatal(err)
	}
	checkDecoded(t, got, want)
	m, want = bundleOf(30, 11)
	got, err = DecodeInto(&buf, m)
	if err != nil {
		t.Fatal(err)
	}
	checkDecoded(t, got, want)
}

// TestDecodeIntoSteadyStateAllocs: after a warm-up decode of the same shape,
// DecodeInto must not allocate.
func TestDecodeIntoSteadyStateAllocs(t *testing.T) {
	var buf DecodeBuf
	m, _ := bundleOf(8, 4)
	if _, err := DecodeInto(&buf, m); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := DecodeInto(&buf, m); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm DecodeInto allocates %.1f times per run, want 0", avg)
	}
}

// TestDecodeIntoErrorKeepsBufUsable: a corrupt message must error out and
// leave the buffer fully usable for the next decode.
func TestDecodeIntoErrorKeepsBufUsable(t *testing.T) {
	var buf DecodeBuf
	if _, err := DecodeInto(&buf, &Message{NonZeroCopy: []byte{1, 2, 3}}); err == nil {
		t.Fatal("truncated message decoded without error")
	}
	m, want := bundleOf(4, 2)
	// Corrupt a copy: flip the magic.
	bad := &Message{NonZeroCopy: append([]byte(nil), m.NonZeroCopy...)}
	bad.NonZeroCopy[0] ^= 0xff
	if _, err := DecodeInto(&buf, bad); err == nil {
		t.Fatal("bad magic decoded without error")
	}
	got, err := DecodeInto(&buf, m)
	if err != nil {
		t.Fatal(err)
	}
	checkDecoded(t, got, want)
}

// TestDecodeZeroArgParcels: the Decode wrapper preserves its historical
// contract — zero-argument parcels come back with a non-nil empty Args.
func TestDecodeZeroArgParcels(t *testing.T) {
	m := Encode([]*Parcel{{Action: 7}, {Action: 8}}, 0)
	ps, err := Decode(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		if p.Args == nil {
			t.Fatalf("parcel %d: Args is nil, want non-nil empty", i)
		}
		if len(p.Args) != 0 {
			t.Fatalf("parcel %d: len(Args) = %d, want 0", i, len(p.Args))
		}
	}
}

// TestDecodeDetachesFromSlab: parcels returned by the Decode wrapper must
// survive a subsequent decode reusing internal storage (they did historically
// own their slices).
func TestDecodeDetachesFromSlab(t *testing.T) {
	m, want := bundleOf(3, 2)
	ps, err := Decode(m)
	if err != nil {
		t.Fatal(err)
	}
	// Decode a different message; if ps aliased shared storage this would
	// clobber it. Decode uses a fresh DecodeBuf per call, so instead check
	// mutating one parcel's Args slice leaves the others untouched.
	ps[0].Args[0] = []byte("clobbered")
	if !bytes.Equal(ps[1].Args[0], want[1].Args[0]) {
		t.Fatalf("parcel 1 arg changed after mutating parcel 0: %q", ps[1].Args[0])
	}
}
