package serialization

import "testing"

func benchParcels(zcSize int) []*Parcel {
	args := [][]byte{make([]byte, 32), make([]byte, 64)}
	if zcSize > 0 {
		args = append(args, make([]byte, zcSize))
	}
	return []*Parcel{{Source: 0, Dest: 1, Action: 3, ContID: 9, Args: args}}
}

func BenchmarkEncodeSmall(b *testing.B) {
	ps := benchParcels(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(ps, 0)
	}
}

func BenchmarkEncodeZeroCopy16K(b *testing.B) {
	ps := benchParcels(16 * 1024)
	b.SetBytes(16 * 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(ps, 0)
	}
}

func BenchmarkDecodeSmall(b *testing.B) {
	m := Encode(benchParcels(0), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeZeroCopy16K(b *testing.B) {
	m := Encode(benchParcels(16*1024), 0)
	b.SetBytes(16 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregatedEncode100Parcels(b *testing.B) {
	var ps []*Parcel
	for i := 0; i < 100; i++ {
		ps = append(ps, benchParcels(0)[0])
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(ps, 0)
	}
}
