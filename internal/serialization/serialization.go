// Package serialization implements the HPX message model described in §2.2
// of the paper. A set of parcels bound for the same destination locality is
// serialized into an "HPX message" consisting of:
//
//   - one non-zero-copy chunk holding parcel metadata and all small
//     arguments,
//   - zero or more zero-copy chunks, one per large argument (an argument is
//     large when it reaches the zero-copy serialization threshold; such
//     arguments are referenced, not copied),
//   - a transmission chunk recording the index and length of the zero-copy
//     arguments, present only when there is at least one zero-copy chunk.
//
// The parcelport layer transfers these chunks; it never inspects parcel
// contents.
package serialization

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hpxgo/internal/wire"
)

// DefaultZeroCopyThreshold is HPX's default zero-copy serialization
// threshold (bytes); the paper keeps it at 8192 for all experiments.
const DefaultZeroCopyThreshold = 8192

// Parcel is the unit of work the HPX upper layer exchanges: the arguments of
// one action invocation plus routing metadata.
type Parcel struct {
	Source int    // source locality
	Dest   int    // destination locality
	Action uint32 // registered action id
	ContID uint64 // continuation id (0 = fire-and-forget)
	Args   [][]byte
}

// RecvOwner is the refcounted owner of a received message's buffers. The
// transport that produced the message holds the initial reference; every
// consumer that keeps any chunk of the message alive past its callback takes
// one with Retain and drops it with Release. The final Release returns the
// buffers (pooled fabric packets, wire-pool bundle buffers) to their pools.
// *fabric.Packet satisfies it directly.
type RecvOwner interface {
	Retain()
	Release()
}

// Message is a serialized HPX message as passed to the parcelport layer.
type Message struct {
	NonZeroCopy  []byte
	Transmission []byte   // nil when there are no zero-copy chunks
	ZeroCopy     [][]byte // large arguments, referenced without copying

	// Owner, when non-nil on a received message, owns the buffers the chunks
	// alias. The receiver must Release the arrival reference when it is done
	// with every chunk (and Retain first for any use that outlives its
	// callback). A nil Owner means the buffers belong to the GC.
	Owner RecvOwner

	// OnSent, when non-nil, is invoked by the parcelport once the message is
	// fully transferred and its buffers may be reused (the upper layer uses
	// it to return connections to the connection cache).
	OnSent func()

	// RecycleOnSent makes Done recycle the encode scratch after OnSent
	// fires. It expresses the common "recycle and nothing else" completion
	// without the owner allocating a closure per message for it.
	RecycleOnSent bool
}

// Done invokes OnSent exactly once (nil-safe), then recycles the encode
// scratch if the owner requested it via RecycleOnSent.
func (m *Message) Done() {
	if m.OnSent != nil {
		f := m.OnSent
		m.OnSent = nil
		f()
	}
	if m.RecycleOnSent {
		m.RecycleOnSent = false
		m.Recycle()
	}
}

// Recycle returns the pooled encode scratch backing NonZeroCopy to the
// shared buffer pool and nils the field. Only the owner of the message may
// call it, after the transfer locally completed (Done) and nothing aliases
// the chunk anymore — never on received or decoded messages, whose parcels
// alias NonZeroCopy. Idempotent.
func (m *Message) Recycle() {
	if m.NonZeroCopy != nil {
		wire.PutBuf(m.NonZeroCopy)
		m.NonZeroCopy = nil
	}
}

// TotalBytes returns the message payload size across all chunks.
func (m *Message) TotalBytes() int {
	n := len(m.NonZeroCopy) + len(m.Transmission)
	for _, zc := range m.ZeroCopy {
		n += len(zc)
	}
	return n
}

const (
	argInline   byte = 0
	argZeroCopy byte = 1

	messageMagic uint32 = 0x48505831 // "HPX1"
)

// Encode serializes parcels into a Message. Arguments of at least
// zcThreshold bytes become zero-copy chunks (their backing slices are
// aliased, not copied). zcThreshold <= 0 selects the default.
//
// The non-zero-copy chunk is drawn from the shared buffer pool; the owner
// may return it with Message.Recycle once the transfer locally completed.
func Encode(parcels []*Parcel, zcThreshold int) *Message {
	if zcThreshold <= 0 {
		zcThreshold = DefaultZeroCopyThreshold
	}
	m := &Message{}
	// Exact-size the scratch so the appends below never grow it (a grown
	// slice would silently abandon the pooled buffer).
	nzc := buffer{bytes: wire.GetBuf(encodedSize(parcels, zcThreshold))[:0]}
	nzc.u32(messageMagic)
	nzc.u32(uint32(len(parcels)))
	for _, p := range parcels {
		encodeParcel(m, &nzc, p, zcThreshold)
	}
	m.NonZeroCopy = nzc.bytes
	m.buildTransmission()
	return m
}

// EncodeOne is Encode for a single parcel, the send-immediate fast path; it
// avoids materializing a one-element slice.
func EncodeOne(p *Parcel, zcThreshold int) *Message {
	if zcThreshold <= 0 {
		zcThreshold = DefaultZeroCopyThreshold
	}
	m := &Message{}
	nzc := buffer{bytes: wire.GetBuf(8 + parcelEncodedSize(p, zcThreshold))[:0]}
	nzc.u32(messageMagic)
	nzc.u32(1)
	encodeParcel(m, &nzc, p, zcThreshold)
	m.NonZeroCopy = nzc.bytes
	m.buildTransmission()
	return m
}

// inlineAll is a zero-copy threshold no argument reaches: it forces every
// argument inline for the direct-encode helpers below.
const inlineAll = 1 << 62

// EncodedSizeInline returns the wire size of the single-parcel message
// encoding of p with every argument inline (no zero-copy chunks).
func EncodedSizeInline(p *Parcel) int { return 8 + parcelEncodedSize(p, inlineAll) }

// AppendEncodeInline appends the single-parcel message encoding of p to dst
// (every argument inline) and returns the extended slice. It is the
// scratch-free variant of EncodeOne for callers that own a destination
// buffer — the aggregation layer encodes parcels straight into its bundle.
// The caller guarantees capacity for EncodedSizeInline(p) bytes (an append
// must not abandon a pooled backing array) and that no argument was meant to
// travel zero-copy.
func AppendEncodeInline(dst []byte, p *Parcel) []byte {
	nzc := buffer{bytes: dst}
	nzc.u32(messageMagic)
	nzc.u32(1)
	var m Message
	encodeParcel(&m, &nzc, p, inlineAll)
	return nzc.bytes
}

// encodedSize returns the exact non-zero-copy chunk size Encode produces.
func encodedSize(parcels []*Parcel, zcThreshold int) int {
	n := 8 // magic + parcel count
	for _, p := range parcels {
		n += parcelEncodedSize(p, zcThreshold)
	}
	return n
}

// parcelEncodedSize is one parcel's exact non-zero-copy footprint.
func parcelEncodedSize(p *Parcel, zcThreshold int) int {
	n := 24 // action, source, dest, continuation id, arg count
	for _, a := range p.Args {
		n += 5 // kind byte + length/index
		if len(a) < zcThreshold {
			n += len(a)
		}
	}
	return n
}

// encodeParcel appends one parcel to the non-zero-copy chunk, registering
// zero-copy arguments on m.
func encodeParcel(m *Message, nzc *buffer, p *Parcel, zcThreshold int) {
	nzc.u32(p.Action)
	nzc.u32(uint32(int32(p.Source)))
	nzc.u32(uint32(int32(p.Dest)))
	nzc.u64(p.ContID)
	nzc.u32(uint32(len(p.Args)))
	for _, a := range p.Args {
		if len(a) >= zcThreshold {
			nzc.b(argZeroCopy)
			nzc.u32(uint32(len(m.ZeroCopy)))
			m.ZeroCopy = append(m.ZeroCopy, a)
		} else {
			nzc.b(argInline)
			nzc.u32(uint32(len(a)))
			nzc.raw(a)
		}
	}
}

// buildTransmission fills in the transmission chunk from the registered
// zero-copy chunks (nil when there are none).
func (m *Message) buildTransmission() {
	if len(m.ZeroCopy) == 0 {
		return
	}
	var tc buffer
	tc.u32(uint32(len(m.ZeroCopy)))
	for i, zc := range m.ZeroCopy {
		tc.u32(uint32(i))
		tc.u64(uint64(len(zc)))
	}
	m.Transmission = tc.bytes
}

// Errors returned by Decode.
var (
	ErrBadMagic  = errors.New("serialization: bad message magic")
	ErrTruncated = errors.New("serialization: truncated message")
	ErrChunk     = errors.New("serialization: zero-copy chunk mismatch")
)

// DecodeBuf is the reusable backing store of DecodeInto: a parcel slab plus
// one shared argument array all parcels' Args windows point into. A zero
// DecodeBuf is ready to use; capacity grows to the largest bundle decoded
// and is reused afterwards, so steady-state decoding allocates nothing.
type DecodeBuf struct {
	parcels []Parcel
	args    [][]byte
	spans   []int // prefix offsets into args; len(parcels)+1 entries
}

// DecodeInto reconstructs the parcels of a message into buf's reused
// storage. It is Decode without the per-call allocations: the returned slice
// and every Parcel.Args window alias buf and stay valid only until the next
// DecodeInto on the same buf. Argument bytes alias m's chunks exactly as
// with Decode (inline args point into m.NonZeroCopy, zero-copy args into
// m.ZeroCopy), so the message buffers must outlive any use of the parcels.
func DecodeInto(buf *DecodeBuf, m *Message) (out []Parcel, err error) {
	parcels := buf.parcels[:0]
	args := buf.args[:0]
	spans := append(buf.spans[:0], 0)
	// Hand the (possibly grown) storage back to buf on every path so its
	// capacity is never abandoned.
	defer func() {
		buf.parcels, buf.args, buf.spans = parcels, args, spans
	}()
	r := reader{bytes: m.NonZeroCopy}
	magic, err := r.u32()
	if err != nil {
		return nil, err
	}
	if magic != messageMagic {
		return nil, ErrBadMagic
	}
	// Validate the transmission chunk when zero-copy chunks exist.
	if len(m.ZeroCopy) > 0 {
		tr := reader{bytes: m.Transmission}
		n, err := tr.u32()
		if err != nil {
			return nil, fmt.Errorf("%w (transmission chunk)", err)
		}
		if int(n) != len(m.ZeroCopy) {
			return nil, fmt.Errorf("%w: transmission chunk lists %d chunks, message has %d", ErrChunk, n, len(m.ZeroCopy))
		}
		for i := 0; i < int(n); i++ {
			idx, err := tr.u32()
			if err != nil {
				return nil, err
			}
			length, err := tr.u64()
			if err != nil {
				return nil, err
			}
			if int(idx) >= len(m.ZeroCopy) || uint64(len(m.ZeroCopy[idx])) != length {
				return nil, fmt.Errorf("%w: chunk %d length mismatch", ErrChunk, idx)
			}
		}
	}
	count, err := r.u32()
	if err != nil {
		return nil, err
	}
	// Plausibility: each parcel needs at least its fixed metadata, so a
	// count implying more bytes than remain is corrupt. This also stops
	// attacker-controlled counts from driving huge allocations.
	const parcelFixedBytes = 4 + 4 + 4 + 8 + 4
	if int64(count)*parcelFixedBytes > int64(r.remaining()) {
		return nil, fmt.Errorf("%w: %d parcels in %d bytes", ErrTruncated, count, r.remaining())
	}
	for pi := uint32(0); pi < count; pi++ {
		parcels = append(parcels, Parcel{})
		p := &parcels[len(parcels)-1]
		if p.Action, err = r.u32(); err != nil {
			return nil, err
		}
		var v uint32
		if v, err = r.u32(); err != nil {
			return nil, err
		}
		p.Source = int(int32(v))
		if v, err = r.u32(); err != nil {
			return nil, err
		}
		p.Dest = int(int32(v))
		if p.ContID, err = r.u64(); err != nil {
			return nil, err
		}
		var nargs uint32
		if nargs, err = r.u32(); err != nil {
			return nil, err
		}
		// Each argument costs at least its kind byte plus a length/index.
		if int64(nargs)*5 > int64(r.remaining()) {
			return nil, fmt.Errorf("%w: %d args in %d bytes", ErrTruncated, nargs, r.remaining())
		}
		for ai := uint32(0); ai < nargs; ai++ {
			kind, err := r.b()
			if err != nil {
				return nil, err
			}
			switch kind {
			case argInline:
				n, err := r.u32()
				if err != nil {
					return nil, err
				}
				a, err := r.take(int(n))
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			case argZeroCopy:
				idx, err := r.u32()
				if err != nil {
					return nil, err
				}
				if int(idx) >= len(m.ZeroCopy) {
					return nil, fmt.Errorf("%w: reference to chunk %d of %d", ErrChunk, idx, len(m.ZeroCopy))
				}
				args = append(args, m.ZeroCopy[idx])
			default:
				return nil, fmt.Errorf("serialization: unknown argument kind %d", kind)
			}
		}
		spans = append(spans, len(args))
	}
	// Args windows are assigned in a final pass: appending to args may have
	// reallocated its backing array mid-decode, which would have invalidated
	// windows taken earlier.
	for i := range parcels {
		s, e := spans[i], spans[i+1]
		parcels[i].Args = args[s:e:e]
	}
	return parcels, nil
}

// Decode reconstructs the parcels of a message. Zero-copy arguments alias
// m.ZeroCopy chunks. It validates chunk counts and lengths against the
// transmission chunk. Allocation-sensitive callers use DecodeInto instead.
func Decode(m *Message) ([]*Parcel, error) {
	var buf DecodeBuf
	ps, err := DecodeInto(&buf, m)
	if err != nil {
		return nil, err
	}
	// Detach the parcels from buf's shared storage so they have independent
	// lifetimes, the historical Decode contract.
	out := make([]*Parcel, len(ps))
	for i := range ps {
		p := ps[i]
		p.Args = append(make([][]byte, 0, len(p.Args)), p.Args...)
		out[i] = &p
	}
	return out, nil
}

// ParseTransmissionSizes extracts the zero-copy chunk lengths from a
// transmission chunk. The parcelport layer uses it to size and post the
// receives for the follow-up zero-copy messages before their payloads
// arrive.
func ParseTransmissionSizes(tc []byte) ([]uint64, error) {
	r := reader{bytes: tc}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	// Each entry occupies 12 bytes; reject implausible counts.
	if int64(n)*12 > int64(r.remaining()) {
		return nil, fmt.Errorf("%w: %d chunk entries in %d bytes", ErrTruncated, n, r.remaining())
	}
	sizes := make([]uint64, n)
	for i := uint32(0); i < n; i++ {
		idx, err := r.u32()
		if err != nil {
			return nil, err
		}
		if idx >= n {
			return nil, fmt.Errorf("%w: chunk index %d out of range %d", ErrChunk, idx, n)
		}
		if sizes[idx], err = r.u64(); err != nil {
			return nil, err
		}
	}
	return sizes, nil
}

// --- little-endian encode/decode helpers ---

type buffer struct{ bytes []byte }

func (b *buffer) b(v byte)     { b.bytes = append(b.bytes, v) }
func (b *buffer) raw(v []byte) { b.bytes = append(b.bytes, v...) }
func (b *buffer) u32(v uint32) { b.bytes = binary.LittleEndian.AppendUint32(b.bytes, v) }
func (b *buffer) u64(v uint64) { b.bytes = binary.LittleEndian.AppendUint64(b.bytes, v) }

type reader struct {
	bytes []byte
	off   int
}

// remaining reports unread bytes.
func (r *reader) remaining() int { return len(r.bytes) - r.off }

func (r *reader) take(n int) ([]byte, error) {
	if r.off+n > len(r.bytes) {
		return nil, ErrTruncated
	}
	v := r.bytes[r.off : r.off+n : r.off+n]
	r.off += n
	return v, nil
}

func (r *reader) b() (byte, error) {
	v, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return v[0], nil
}

func (r *reader) u32() (uint32, error) {
	v, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(v), nil
}

func (r *reader) u64() (uint64, error) {
	v, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(v), nil
}
