package serialization

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeSmallArgs(t *testing.T) {
	p := &Parcel{Source: 1, Dest: 2, Action: 77, ContID: 99, Args: [][]byte{[]byte("a"), []byte("bb")}}
	m := Encode([]*Parcel{p}, 0)
	if m.Transmission != nil || len(m.ZeroCopy) != 0 {
		t.Fatal("small args must not produce zero-copy chunks")
	}
	got, err := Decode(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], p) {
		t.Fatalf("round trip mismatch: %+v", got[0])
	}
}

func TestEncodeDecodeZeroCopy(t *testing.T) {
	big := make([]byte, DefaultZeroCopyThreshold)
	for i := range big {
		big[i] = byte(i)
	}
	p := &Parcel{Dest: 1, Action: 5, Args: [][]byte{[]byte("small"), big, []byte("tail")}}
	m := Encode([]*Parcel{p}, 0)
	if len(m.ZeroCopy) != 1 {
		t.Fatalf("ZeroCopy chunks = %d, want 1", len(m.ZeroCopy))
	}
	if m.Transmission == nil {
		t.Fatal("transmission chunk missing despite zero-copy chunk")
	}
	if &m.ZeroCopy[0][0] != &big[0] {
		t.Fatal("zero-copy chunk was copied")
	}
	got, err := Decode(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0].Args[1], big) {
		t.Fatal("big arg corrupted")
	}
	if &got[0].Args[1][0] != &big[0] {
		t.Fatal("decode copied the zero-copy chunk")
	}
}

func TestThresholdBoundary(t *testing.T) {
	at := make([]byte, 100)
	below := make([]byte, 99)
	p := &Parcel{Args: [][]byte{at, below}}
	m := Encode([]*Parcel{p}, 100)
	if len(m.ZeroCopy) != 1 {
		t.Fatalf("args at the threshold must be zero-copy; got %d chunks", len(m.ZeroCopy))
	}
}

func TestMultipleParcelsAggregated(t *testing.T) {
	var ps []*Parcel
	for i := 0; i < 10; i++ {
		ps = append(ps, &Parcel{
			Source: i, Dest: 3, Action: uint32(i), ContID: uint64(i * 2),
			Args: [][]byte{[]byte{byte(i)}, make([]byte, 9000)},
		})
	}
	m := Encode(ps, 0)
	if len(m.ZeroCopy) != 10 {
		t.Fatalf("ZeroCopy = %d, want 10", len(m.ZeroCopy))
	}
	got, err := Decode(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("decoded %d parcels", len(got))
	}
	for i, p := range got {
		if p.Action != uint32(i) || p.Source != i || p.ContID != uint64(i*2) {
			t.Fatalf("parcel %d metadata wrong: %+v", i, p)
		}
	}
}

func TestEmptyArgsAndNoArgs(t *testing.T) {
	ps := []*Parcel{
		{Action: 1},                           // no args
		{Action: 2, Args: [][]byte{{}}},       // one empty arg
		{Action: 3, Args: [][]byte{nil, {1}}}, // nil arg
	}
	m := Encode(ps, 0)
	got, err := Decode(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0].Args) != 0 {
		t.Fatal("parcel 0 should have no args")
	}
	if len(got[1].Args[0]) != 0 || len(got[2].Args[0]) != 0 {
		t.Fatal("empty args corrupted")
	}
	if got[2].Args[1][0] != 1 {
		t.Fatal("arg after nil corrupted")
	}
}

func TestDecodeBadMagic(t *testing.T) {
	m := &Message{NonZeroCopy: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	if _, err := Decode(m); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	p := &Parcel{Action: 1, Args: [][]byte{[]byte("hello world")}}
	m := Encode([]*Parcel{p}, 0)
	for cut := 1; cut < len(m.NonZeroCopy); cut += 3 {
		trunc := &Message{NonZeroCopy: m.NonZeroCopy[:cut]}
		if _, err := Decode(trunc); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(m.NonZeroCopy))
		}
	}
}

func TestDecodeChunkMismatch(t *testing.T) {
	big := make([]byte, DefaultZeroCopyThreshold)
	m := Encode([]*Parcel{{Args: [][]byte{big}}}, 0)

	// Wrong chunk length.
	bad := &Message{NonZeroCopy: m.NonZeroCopy, Transmission: m.Transmission, ZeroCopy: [][]byte{big[:100]}}
	if _, err := Decode(bad); !errors.Is(err, ErrChunk) {
		t.Fatalf("err = %v, want ErrChunk", err)
	}
	// Missing chunk entirely (decode path without transmission validation).
	bad2 := &Message{NonZeroCopy: m.NonZeroCopy}
	if _, err := Decode(bad2); err == nil {
		t.Fatal("decode with missing zero-copy chunk succeeded")
	}
	// Chunk-count mismatch in transmission chunk.
	bad3 := &Message{NonZeroCopy: m.NonZeroCopy, Transmission: m.Transmission, ZeroCopy: [][]byte{big, big}}
	if _, err := Decode(bad3); !errors.Is(err, ErrChunk) {
		t.Fatalf("err = %v, want ErrChunk", err)
	}
}

func TestMessageDoneOnce(t *testing.T) {
	calls := 0
	m := &Message{OnSent: func() { calls++ }}
	m.Done()
	m.Done()
	if calls != 1 {
		t.Fatalf("OnSent called %d times", calls)
	}
	(&Message{}).Done() // nil-safe
}

func TestTotalBytes(t *testing.T) {
	big := make([]byte, 10000)
	m := Encode([]*Parcel{{Args: [][]byte{[]byte("abc"), big}}}, 0)
	want := len(m.NonZeroCopy) + len(m.Transmission) + len(big)
	if m.TotalBytes() != want {
		t.Fatalf("TotalBytes = %d, want %d", m.TotalBytes(), want)
	}
}

// TestRoundTripProperty exercises Encode/Decode over randomly generated
// parcel batches, including arguments straddling the zero-copy threshold.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gen := func() []*Parcel {
		n := 1 + rng.Intn(5)
		ps := make([]*Parcel, n)
		for i := range ps {
			na := rng.Intn(4)
			args := make([][]byte, na)
			for j := range args {
				var sz int
				switch rng.Intn(3) {
				case 0:
					sz = rng.Intn(32)
				case 1:
					sz = DefaultZeroCopyThreshold - 1
				default:
					sz = DefaultZeroCopyThreshold + rng.Intn(5000)
				}
				a := make([]byte, sz)
				rng.Read(a)
				args[j] = a
			}
			ps[i] = &Parcel{
				Source: rng.Intn(64), Dest: rng.Intn(64),
				Action: rng.Uint32(), ContID: rng.Uint64(), Args: args,
			}
		}
		return ps
	}
	for iter := 0; iter < 200; iter++ {
		ps := gen()
		got, err := Decode(Encode(ps, 0))
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if len(got) != len(ps) {
			t.Fatalf("iter %d: count %d != %d", iter, len(got), len(ps))
		}
		for i := range ps {
			if got[i].Action != ps[i].Action || got[i].Source != ps[i].Source ||
				got[i].Dest != ps[i].Dest || got[i].ContID != ps[i].ContID {
				t.Fatalf("iter %d parcel %d metadata mismatch", iter, i)
			}
			if len(got[i].Args) != len(ps[i].Args) {
				t.Fatalf("iter %d parcel %d arg count", iter, i)
			}
			for j := range ps[i].Args {
				if !bytes.Equal(got[i].Args[j], ps[i].Args[j]) {
					t.Fatalf("iter %d parcel %d arg %d mismatch", iter, i, j)
				}
			}
		}
	}
}

// TestInlineArgQuick drives the encoder with quick-generated inline args.
func TestInlineArgQuick(t *testing.T) {
	f := func(a, b []byte, action uint32, cont uint64) bool {
		if len(a) >= DefaultZeroCopyThreshold || len(b) >= DefaultZeroCopyThreshold {
			return true // only inline args in this property
		}
		p := &Parcel{Action: action, ContID: cont, Args: [][]byte{a, b}}
		got, err := Decode(Encode([]*Parcel{p}, 0))
		if err != nil || len(got) != 1 {
			return false
		}
		return bytes.Equal(got[0].Args[0], a) && bytes.Equal(got[0].Args[1], b) &&
			got[0].Action == action && got[0].ContID == cont
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAppendEncodeInline pins the direct-encode helper against EncodeOne:
// identical bytes, exact size accounting, and append-in-place semantics.
func TestAppendEncodeInline(t *testing.T) {
	parcels := []*Parcel{
		{Source: 1, Dest: 2, Action: 3, Args: [][]byte{[]byte("hello"), nil}},
		{Source: -1, Dest: 0, Action: 0xffffffff, ContID: 1 << 40},
		{Args: [][]byte{make([]byte, 300)}},
	}
	for i, p := range parcels {
		ref := EncodeOne(p, 1<<30) // threshold above every arg: all inline
		need := EncodedSizeInline(p)
		if need != len(ref.NonZeroCopy) {
			t.Fatalf("parcel %d: EncodedSizeInline = %d, EncodeOne produced %d bytes",
				i, need, len(ref.NonZeroCopy))
		}
		prefix := []byte{0xaa, 0xbb}
		got := AppendEncodeInline(append([]byte(nil), prefix...), p)
		if len(got) != len(prefix)+need {
			t.Fatalf("parcel %d: appended %d bytes, want %d", i, len(got)-len(prefix), need)
		}
		if !bytes.Equal(got[len(prefix):], ref.NonZeroCopy) {
			t.Fatalf("parcel %d: direct encoding differs from EncodeOne", i)
		}
		if !bytes.Equal(got[:len(prefix)], prefix) {
			t.Fatalf("parcel %d: prefix clobbered", i)
		}
		decoded, err := Decode(&Message{NonZeroCopy: got[len(prefix):]})
		if err != nil || len(decoded) != 1 {
			t.Fatalf("parcel %d: decode: %v (%d parcels)", i, err, len(decoded))
		}
		if decoded[0].Action != p.Action || decoded[0].ContID != p.ContID {
			t.Fatalf("parcel %d: round trip %+v != %+v", i, decoded[0], p)
		}
		ref.Recycle()
	}
}
