package serialization

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the message decoder: it must never
// panic, and on valid re-encoded inputs it must round-trip.
func FuzzDecode(f *testing.F) {
	// Seed with valid encodings.
	small := Encode([]*Parcel{{Source: 1, Dest: 2, Action: 3, Args: [][]byte{[]byte("seed")}}}, 0)
	f.Add(small.NonZeroCopy)
	big := Encode([]*Parcel{{Args: [][]byte{make([]byte, DefaultZeroCopyThreshold)}}}, 0)
	f.Add(big.NonZeroCopy)
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x58, 0x50, 0x48}) // magic only
	f.Fuzz(func(t *testing.T, data []byte) {
		m := &Message{NonZeroCopy: data}
		ps, err := Decode(m)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode to the same parcels.
		m2 := Encode(ps, 0)
		ps2, err := Decode(m2)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(ps2) != len(ps) {
			t.Fatalf("parcel count changed: %d -> %d", len(ps), len(ps2))
		}
		for i := range ps {
			if ps[i].Action != ps2[i].Action || len(ps[i].Args) != len(ps2[i].Args) {
				t.Fatal("parcel changed across round trip")
			}
			for j := range ps[i].Args {
				if !bytes.Equal(ps[i].Args[j], ps2[i].Args[j]) {
					t.Fatal("arg changed across round trip")
				}
			}
		}
	})
}

// FuzzParseTransmissionSizes must never panic on arbitrary input.
func FuzzParseTransmissionSizes(f *testing.F) {
	valid := Encode([]*Parcel{{Args: [][]byte{make([]byte, 9000), make([]byte, 10000)}}}, 0)
	f.Add(valid.Transmission)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sizes, err := ParseTransmissionSizes(data)
		if err == nil {
			for _, s := range sizes {
				_ = s
			}
		}
	})
}
